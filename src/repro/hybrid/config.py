"""Configuration of the hybrid analytic fast path (repro.hybrid)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HybridConfig:
    """Knobs of the steady-state fast path.

    The defaults are deliberately conservative: the detector needs
    ``windows`` consecutive telemetry windows whose statistics all sit
    within ``tol`` relative deviation before any service is committed,
    and a committed run aborts back to detailed simulation as soon as
    the observed arrival rate drifts ``guard_factor * tol`` away from
    the calibrated rate.

    ``tol=0`` can never converge (no finite window of a stochastic
    simulation has zero deviation), which is the determinism contract:
    a ``tol=0`` hybrid run is byte-identical to a detailed run.
    """

    #: Relative tolerance for the steady-state declaration (0 = never).
    tol: float = 0.2
    #: Telemetry window length; 0 = auto-size from the run's warm-up
    #: span and arrival rate at install time.
    window_ns: float = 0.0
    #: Consecutive stable windows required before committing.
    windows: int = 4
    #: Minimum root completions per window for it to count at all.
    min_samples: int = 25
    #: Abort when the committed arrival rate drifts beyond
    #: ``guard_factor * tol`` relative to the calibration rate.
    guard_factor: float = 2.0
    #: After this many aborts the run stays detailed for good.
    max_aborts: int = 2
    #: Root-latency samples gathered *after* convergence before the
    #: root service commits (tail quantiles need calibration mass that
    #: the detection windows alone cannot provide).
    calibration_roots: int = 300

    def __post_init__(self):
        if self.tol < 0:
            raise ValueError(f"tol must be >= 0, got {self.tol}")
        if self.window_ns < 0:
            raise ValueError("window_ns must be >= 0")
        if self.windows < 2:
            raise ValueError("windows must be >= 2")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.guard_factor <= 0:
            raise ValueError("guard_factor must be > 0")
        if self.max_aborts < 1:
            raise ValueError("max_aborts must be >= 1")
        if self.calibration_roots < 1:
            raise ValueError("calibration_roots must be >= 1")
