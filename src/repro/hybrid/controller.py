"""Guard-and-abort controller: detect, calibrate, commit, watch, abort.

The controller follows the trace-speculation shape with one extra
stage.  Its lifecycle per run:

* **DETECTING** — detailed simulation; per-window telemetry (EWMA
  smoothed) feeds the :class:`~repro.hybrid.detector.SteadyStateDetector`.
* **CALIBRATING** — steady state declared; simulation stays detailed
  while root/call latency samples accumulate (tail quantiles need more
  mass than the detection windows alone), with the drift guard already
  live against the converged rate.
* **COMMITTED** — per-service empirical models answer completion
  events analytically; only the guard tick and the elided completions
  remain as events for committed services.
* **abort** — any guard trip (load drift, structural change) drops
  straight back to DETECTING and re-arms the detector.

Re-materialization on abort is trivial by construction: the detailed
machinery is never torn down — queues, cores, NICs and the ICN keep
existing and simply receive no traffic for committed services.  An
abort stops eliding new work; in-flight analytic completions still fire
(their accounting is identical to real completions), and the next root
request takes the detailed path against the idle queues.

Structural guards keep risky runs fully detailed: a fault injector, an
autoscaler, or a resilience policy anywhere in the cluster means the
controller never commits, so those runs are byte-identical to a run
without the hybrid layer at all.  The same holds for ``tol=0`` (the
detector can never converge) — pinned in tests and perf_smoke.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

import numpy as np

from repro.hybrid.config import HybridConfig
from repro.hybrid.detector import SteadyStateDetector
from repro.hybrid.model import EmpiricalDist, MGkModel, service_demand_ns

#: Controller lifecycle states.
DETECTING, CALIBRATING, COMMITTED = "detecting", "calibrating", "committed"


class HybridController:
    """Per-run orchestrator of the analytic fast path."""

    def __init__(self, sim, config: HybridConfig):
        self.sim = sim
        self.cfg = config
        self.engine = sim.engine
        self.rng = sim.streams.stream("hybrid")
        n_villages = max(1, sim.config.n_queues) * sim.n_servers
        self.detector = SteadyStateDetector(
            config.tol, config.windows,
            floors={"occupancy": float(n_villages)})
        self.state = DETECTING
        self.window_ns: float = 0.0
        self._horizon_ns: float = 0.0
        #: Services currently served analytically (empty = detailed).
        self.committed: set = set()
        self._dists: Dict[str, EmpiricalDist] = {}
        # Post-convergence calibration samples (unbounded on purpose:
        # every window in CALIBRATING passed the drift guard, so they
        # all belong to the steady-state regime).
        self._cal_roots: List[float] = []
        self._cal_calls: Dict[str, List[float]] = {}
        # Window accumulators for the detector series.
        self._arrivals_cur = 0
        self._seg_sum = 0.0
        self._seg_count = 0
        self._call_cur: Dict[str, list] = {}
        # Guard reference rate and its estimators.  The EWMA is too
        # noisy to freeze as a reference (one Poisson dip at the
        # convergence window would pin it ~20% off), so the guard works
        # on counts: a trailing window-count average for the live rate
        # and the cumulative calibration-span rate for the reference.
        self._committed_rate: float = 0.0
        self._rate_hist: deque = deque(maxlen=8)
        self._cal_arrivals = 0
        self._cal_t0 = 0.0
        # EWMA-smoothed telemetry series (alpha 0.5): single-window
        # Poisson noise at realistic window sizes would otherwise stall
        # the detector and trip the drift guard spuriously.
        self._ewma: Dict[str, float] = {}
        self._guard_strikes = 0
        # Stats.
        self.commits = 0
        self.aborts = 0
        self.roots_elided = 0
        self.calls_elided = 0
        self.committed_at_ns: Optional[float] = None
        self.abort_log: List[tuple] = []
        self._events_per_root = 0.0
        self._events_per_call = 0.0
        self._elided_estimate = 0.0
        self._ev0 = 0
        self._done0 = 0
        self._dead = False       # max_aborts exhausted: detailed for good

    # ------------------------------------------------------------- install

    def install(self) -> None:
        """Arm the telemetry taps and start the window tick."""
        sim = self.sim
        self.window_ns = self.cfg.window_ns or self._auto_window_ns()
        self._horizon_ns = sim.duration_s * 1e9
        for server in sim.servers:
            server.hybrid = self
            for village in server.villages:
                village.hybrid_observe = self._observe_segment
        self._ev0 = self.engine.events_processed
        self._done0 = len(sim.recorder)
        self.engine.schedule(self.window_ns, self._tick)

    def _auto_window_ns(self) -> float:
        """Default window: long enough that a window sees
        ``min_samples`` roots on average at the offered rate (window
        statistics are meaningless below that mass), with a 1 ms floor
        so a torrent of arrivals cannot shrink ticks into event-loop
        noise.  Deliberately *not* scaled with run duration — detection
        latency should depend on the workload's mixing time, not on how
        long the caller happens to simulate."""
        sim = self.sim
        rate = sim.rps_per_server * sim.n_servers
        mass_ns = self.cfg.min_samples / rate * 1e9 if rate > 0 else 1e6
        return max(mass_ns, 1e6)

    # ----------------------------------------------------------- telemetry

    def _observe_segment(self, service: str, duration_ns: float) -> None:
        """Per-segment service-time tap (wired into every village)."""
        self._seg_sum += duration_ns
        self._seg_count += 1

    def observe_call(self, target: str, latency_ns: float) -> None:
        """Parent-visible latency of one detailed downstream RPC."""
        self._call_cur.setdefault(target, []).append(latency_ns)

    def _smooth(self, name: str, value: float) -> float:
        prev = self._ewma.get(name)
        cur = value if prev is None else 0.5 * prev + 0.5 * value
        self._ewma[name] = cur
        return cur

    # ---------------------------------------------------------------- tick

    def _structurally_unsafe(self) -> bool:
        """True when the run may take a non-steady-state turn the model
        cannot represent: fault injection (checked at tick time because
        ``install_faults`` may arm an injector after construction),
        autoscaling, or a resilience policy rerouting calls."""
        sim = self.sim
        return (sim.injector is not None
                or sim.autoscaler is not None
                or sim.resilience is not None)

    def _tick(self) -> None:
        if self.engine.now >= self._horizon_ns:
            # Past the arrival horizon the cluster only drains; there is
            # nothing left to elide and the falling rate must not be
            # mistaken for drift.
            return
        if not self._dead:
            if self._structurally_unsafe():
                if self.state is not DETECTING:
                    self._abort("structural")
            else:
                self._window_close()
        if self.engine.peek_time() is not None:
            self.engine.schedule(self.window_ns, self._tick)

    def _window_close(self) -> None:
        sim = self.sim
        window_s = self.window_ns * 1e-9
        arrivals = self._arrivals_cur
        rate = self._smooth("rate", arrivals / window_s)
        self._rate_hist.append(arrivals)
        trailing = (sum(self._rate_hist)
                    / (len(self._rate_hist) * window_s))
        mean_seg = self._seg_sum / self._seg_count if self._seg_count else 0.0
        occupancy = float(sum(v.rq.occupancy for s in sim.servers
                              for v in s.villages))
        new_roots = sim.recorder._latencies[self._done0:]
        self._done0 = len(sim.recorder)
        calls_cur, self._call_cur = self._call_cur, {}
        self._arrivals_cur = 0
        self._seg_sum = 0.0
        self._seg_count = 0
        if self.state is COMMITTED:
            self._guard(trailing)
            return
        if self.state is CALIBRATING:
            # The guard is live during calibration too: a drifting load
            # invalidates the samples, so start over.
            self._guard(trailing)
            if self.state is not CALIBRATING:
                return
            self._cal_arrivals += arrivals
            self._cal_roots.extend(new_roots)
            for name, vals in calls_cur.items():
                self._cal_calls.setdefault(name, []).extend(vals)
            if len(self._cal_roots) >= self.cfg.calibration_roots \
                    and self._tail_stable():
                self._commit()
            return
        series = {"rate": rate,
                  "occupancy": self._smooth("occupancy", occupancy),
                  "service_ns": self._smooth("service_ns", mean_seg)}
        if self.detector.observe(series):
            self.state = CALIBRATING
            self._committed_rate = trailing
            self._cal_arrivals = 0
            self._cal_t0 = self.engine.now

    def _tail_stable(self) -> bool:
        """Tail-convergence gate: queueing tails mix slowly (rare long
        excursions keep raising the measured p99 well after the mean has
        settled), so eliding as soon as the *mean* converges freezes an
        underestimated tail.  Compare the tail level (mean of the top
        5%) of the first and second halves of the calibration sample;
        commit only once they agree within ``tol/2``."""
        lats = np.asarray(self._cal_roots)
        half = len(lats) // 2
        first, second = lats[:half], lats[half:]
        a = float(np.mean(np.sort(first)[-max(1, len(first) // 20):]))
        b = float(np.mean(np.sort(second)[-max(1, len(second) // 20):]))
        return abs(b - a) <= 0.5 * self.cfg.tol * max(a, b)

    # -------------------------------------------------------------- commit

    def _commit(self) -> None:
        sim = self.sim
        check = sim.check
        self._dists[sim.app.root] = EmpiricalDist(self._cal_roots)
        self.committed.add(sim.app.root)
        for name in sorted(self._cal_calls):
            if name == sim.app.root:
                continue
            if len(self._cal_calls[name]) >= self.cfg.min_samples:
                self._dists[name] = EmpiricalDist(self._cal_calls[name])
                self.committed.add(name)
        # Refine the guard reference to the whole-calibration-span
        # rate: far more mass than any single window's estimate.
        span_s = (self.engine.now - self._cal_t0) * 1e-9
        if span_s > 0 and self._cal_arrivals:
            self._committed_rate = self._cal_arrivals / span_s
        self.state = COMMITTED
        self.commits += len(self.committed)
        if self.committed_at_ns is None:
            self.committed_at_ns = self.engine.now
        done = len(sim.recorder)
        if done:
            self._events_per_root = \
                (self.engine.events_processed - self._ev0) / done
            self._events_per_call = self._events_per_root / \
                (1.0 + sim.app.mean_rpc_count())
        if check.enabled:
            for name in sorted(self.committed):
                check.hybrid_commit(name)

    # --------------------------------------------------------------- guard

    def _guard_band(self, ref: float) -> float:
        """Out-of-band threshold around the committed reference rate.

        The base band covers Poisson counting noise and genuine drift
        tolerance.  A *stationary-but-bursty* arrival profile (lognormal
        windows, MMPP phases) adds window-to-window rate variance that
        is not drift — the profile reports it via ``count_cv`` over the
        trailing-average span, and the band widens to 3 sigma of that
        inherent variability.  Non-stationary profiles (diurnal, flash
        crowd, piecewise, trace replay) return None and keep the band
        sharp: a flash-crowd ramp must abort the fast path."""
        band = self.cfg.guard_factor * self.cfg.tol * max(ref, 1e-9)
        profile = getattr(self.sim, "rate_profile", None)
        if profile is None:
            return band
        span_s = max(1, len(self._rate_hist)) * self.window_ns * 1e-9
        cv = profile.count_cv(span_s) \
            if hasattr(profile, "count_cv") else None
        if cv:
            band = max(band, 3.0 * cv * max(ref, 1e-9))
        return band

    def _guard(self, rate: float) -> None:
        """Cheap drift predicate on every window while armed.

        Requires two *consecutive* out-of-band windows before
        aborting: genuine load drift persists across windows, while a
        single Poisson-noisy window does not, and an abort is expensive
        (the run stays detailed until the detector re-converges)."""
        ref = self._committed_rate
        band = self._guard_band(ref)
        if abs(rate - ref) > band:
            self._guard_strikes += 1
            if self._guard_strikes >= 2:
                self._abort("rate-drift")
        else:
            self._guard_strikes = 0

    def _abort(self, reason: str) -> None:
        """Back to detailed mode; in-flight analytic completions still
        fire (their accounting matches real completions), new work takes
        the detailed path against the still-materialized queues."""
        was_committed = self.state is COMMITTED
        self.state = DETECTING
        self.committed.clear()
        self._dists.clear()
        self._cal_roots = []
        self._cal_calls = {}
        self._ewma.clear()
        self._guard_strikes = 0
        self._rate_hist.clear()
        self.detector.reset()
        self._done0 = len(self.sim.recorder)
        self._ev0 = self.engine.events_processed
        if not was_committed:
            return      # a calibration restart, not a fast-path abort
        self.aborts += 1
        self.abort_log.append((self.engine.now, reason))
        if self.sim.check.enabled:
            self.sim.check.hybrid_abort(reason)
        if self.aborts >= self.cfg.max_aborts:
            self._dead = True

    # ----------------------------------------------------------- fast path

    def intercept_root(self, server, arrival_ns: float) -> bool:
        """Called for every root issue; True = completion is analytic."""
        self._arrivals_cur += 1
        root = self.sim.app.root
        if root not in self.committed:
            return False
        latency = self._dists[root].sample(self.rng)
        delay = max(0.0, arrival_ns + latency - self.engine.now)
        self.engine.schedule(delay, self._complete_root, server, arrival_ns)
        self.roots_elided += 1
        self._elided_estimate += max(0.0, self._events_per_root - 1.0)
        return True

    def _complete_root(self, server, arrival_ns: float) -> None:
        """Replicates the success branch of the detailed done() path so
        every ledger (LB, root conservation, recorders, metrics) balances
        exactly as if the request had been simulated."""
        sim = self.sim
        if sim.lb is not None:
            sim.lb.request_done(server.server_id)
            sim.server_answered[server.server_id] += 1
        if sim.check.enabled:
            sim.check.root_done("completed")
            sim.check.hybrid_elide_root()
        latency = self.engine.now - arrival_ns
        sim.recorder.record(self.engine.now, latency)
        if sim.server_recorders is not None:
            sim.server_recorders[server.server_id].record(
                self.engine.now, latency)
        if sim.metrics is not None:
            sim.metrics.histogram("latency_ns").observe(latency)
        self.engine.events_elided = int(self._elided_estimate)

    def should_elide_call(self, target: str) -> bool:
        return target in self.committed

    def elide_call(self, parent, village, target: str) -> None:
        """Answer a downstream RPC analytically: after a sampled
        parent-visible latency the parent advances exactly as it would
        on a real response (same wakeup path through the scheduler)."""
        self.calls_elided += 1
        self._elided_estimate += max(0.0, self._events_per_call - 1.0)
        if self.sim.check.enabled:
            self.sim.check.hybrid_elide_call(target)
        latency = self._dists[target].sample(self.rng)

        def respond() -> None:
            parent.advance_segment()
            village.make_ready(parent)

        self.engine.schedule(latency, respond)

    # --------------------------------------------------------------- stats

    def stats(self) -> dict:
        """JSON-safe ``hybrid_stats`` payload (deterministic ordering)."""
        sim = self.sim
        out = {
            "tol": self.cfg.tol,
            "window_ns": self.window_ns,
            "state": self.state,
            "windows_seen": self.detector.windows_seen,
            "commits": self.commits,
            "aborts": self.aborts,
            "committed_at_ns": self.committed_at_ns,
            "abort_log": [[t, reason] for t, reason in self.abort_log],
            "services_committed": sorted(self.committed),
            "roots_elided": self.roots_elided,
            "calls_elided": self.calls_elided,
            "events_elided": self.engine.events_elided,
            "models": {},
        }
        for name in sorted(self._dists):
            dist = self._dists[name]
            out["models"][name] = {
                "samples": len(dist),
                "mean_ns": dist.mean,
                "p99_ns": dist.quantile(0.99),
            }
        if self.committed:
            demand = service_demand_ns(sim.config, sim.app)
            mgk = MGkModel(
                rate_rps=self._committed_rate,
                service_ns=demand,
                servers=sim.config.n_cores * sim.n_servers,
                cs2=1.0)
            out["mgk"] = mgk.as_dict()
        return out
