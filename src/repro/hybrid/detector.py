"""Steady-state detection over windowed telemetry series.

The detector consumes one observation dict per telemetry window (one
value per watched series: arrival rate, service-time EWMA, run-queue
occupancy, ...) and declares convergence once the last ``windows``
observations of *every* series sit within a relative tolerance band
around their window mean, and no series is still strictly monotone
across the whole band (a slow ramp can fit inside a wide band while
clearly still trending).

It is deliberately decoupled from the simulator: inputs are plain
dicts, so tests can drive it with scripted non-stationary series.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional


class SteadyStateDetector:
    """Declares steady state after ``windows`` stable telemetry windows."""

    def __init__(self, tol: float, windows: int, floors: Optional[Dict[str, float]] = None):
        if windows < 2:
            raise ValueError("windows must be >= 2")
        self.tol = tol
        self.windows = windows
        #: Per-series absolute floor added to the relative band so
        #: near-zero series (e.g. RQ occupancy at low load) do not
        #: demand impossible absolute stability.
        self.floors = dict(floors or {})
        self._history: Dict[str, deque] = {}
        self.windows_seen = 0
        self.converged = False

    def reset(self):
        """Re-arm after an abort: forget all history and start over."""
        self._history.clear()
        self.windows_seen = 0
        self.converged = False

    def observe(self, window: Dict[str, float]) -> bool:
        """Feed one telemetry window; returns True once steady state holds.

        Once converged the detector latches until :meth:`reset`.
        """
        if self.converged:
            return True
        self.windows_seen += 1
        for name, value in window.items():
            hist = self._history.get(name)
            if hist is None:
                hist = self._history[name] = deque(maxlen=self.windows)
            hist.append(float(value))
        if self.tol <= 0 or not self._history:
            return False
        for name, hist in self._history.items():
            if len(hist) < self.windows:
                return False
            if not self._series_stable(name, hist):
                return False
        self.converged = True
        return True

    def _series_stable(self, name: str, hist) -> bool:
        values = list(hist)
        mean = sum(values) / len(values)
        floor = self.floors.get(name, 1e-12)
        band = self.tol * max(abs(mean), floor)
        if any(abs(v - mean) > band for v in values):
            return False
        # A strictly monotone run across the whole band is a ramp, not
        # noise around a fixed point, even if it fits inside the band.
        # Meaningless below 3 points (any two distinct values are
        # "monotone"), where it would block convergence forever.
        if len(values) < 3:
            return True
        increasing = all(b > a for a, b in zip(values, values[1:]))
        decreasing = all(b < a for a, b in zip(values, values[1:]))
        return not (increasing or decreasing)
