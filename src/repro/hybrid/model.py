"""Calibrated analytic models behind the hybrid fast path.

Two pieces live here:

* :class:`EmpiricalDist` — a frozen sample of latencies gathered during
  the detailed warm-up, answering quantile and inverse-CDF sampling
  queries.  Committed services draw their analytic completion latencies
  from this distribution, so the fast path reproduces the *measured*
  latency shape rather than an assumed one.
* :class:`MGkModel` — an M/G/k multi-server queue (Allen–Cunneen
  approximation over Erlang C) parameterized from measured moments.
  It supplies sanity numbers for ``hybrid_stats`` (utilization,
  saturation rate) and the fig18 warm-start saturation estimate via
  :func:`service_demand_ns`.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.cpu.coherence import CoherenceConfig, CoherenceModel
from repro.cpu.core_model import CoreModel


class EmpiricalDist:
    """Inverse-CDF sampler over a frozen set of measured latencies."""

    def __init__(self, samples: Sequence[float]):
        if len(samples) == 0:
            raise ValueError("EmpiricalDist needs at least one sample")
        self._sorted = np.sort(np.asarray(samples, dtype=float))

    def __len__(self) -> int:
        return int(self._sorted.size)

    @property
    def mean(self) -> float:
        return float(self._sorted.mean())

    @property
    def cv(self) -> float:
        """Coefficient of variation of the calibration sample."""
        m = self.mean
        if m <= 0:
            return 0.0
        return float(self._sorted.std() / m)

    def quantile(self, q: float) -> float:
        return float(np.quantile(self._sorted, q))

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value by interpolated inverse-CDF over the samples."""
        u = rng.random()
        pos = u * (self._sorted.size - 1)
        lo = int(pos)
        hi = min(lo + 1, self._sorted.size - 1)
        frac = pos - lo
        return float(self._sorted[lo] * (1.0 - frac) + self._sorted[hi] * frac)


class MGkModel:
    """M/G/k queue via the Allen–Cunneen approximation.

    ``rate_rps`` is the arrival rate, ``service_ns`` the mean service
    demand per job, ``servers`` the number of parallel servers (cores),
    ``ca2``/``cs2`` the squared coefficients of variation of the
    inter-arrival and service processes.
    """

    def __init__(self, rate_rps: float, service_ns: float, servers: int,
                 ca2: float = 1.0, cs2: float = 1.0):
        if rate_rps < 0 or service_ns <= 0 or servers < 1:
            raise ValueError("invalid M/G/k parameters")
        self.rate_rps = rate_rps
        self.service_ns = service_ns
        self.servers = servers
        self.ca2 = max(0.0, ca2)
        self.cs2 = max(0.0, cs2)

    @property
    def utilization(self) -> float:
        return self.rate_rps * self.service_ns * 1e-9 / self.servers

    @property
    def saturation_rps(self) -> float:
        """Arrival rate at which utilization reaches 1."""
        return self.servers / (self.service_ns * 1e-9)

    def erlang_c(self) -> float:
        """P(wait) for the underlying M/M/k at the same utilization."""
        k = self.servers
        rho = self.utilization
        if rho >= 1.0:
            return 1.0
        a = k * rho  # offered load in Erlangs
        # Iteratively build the Erlang-B blocking probability, then
        # convert to Erlang C; numerically stable for large k.
        b = 1.0
        for i in range(1, k + 1):
            b = a * b / (i + a * b)
        return b / (1.0 - rho * (1.0 - b))

    def mean_wait_ns(self) -> float:
        """Mean queueing delay (excluding service) per Allen–Cunneen."""
        rho = self.utilization
        if rho >= 1.0:
            return math.inf
        wq_mmk = self.erlang_c() * self.service_ns / \
            (self.servers * (1.0 - rho))
        return (self.ca2 + self.cs2) / 2.0 * wq_mmk

    def mean_response_ns(self) -> float:
        return self.mean_wait_ns() + self.service_ns

    def as_dict(self) -> dict:
        return {
            "rate_rps": self.rate_rps,
            "service_ns": self.service_ns,
            "servers": self.servers,
            "utilization": self.utilization,
            "saturation_rps": self.saturation_rps,
        }


def service_demand_ns(config, app) -> float:
    """Expected contention-free core demand of one root request.

    Walks the expected call tree of ``app`` charging every visited
    service its mean compute segments (through the same
    :class:`CoreModel` CPI the detailed simulator uses, including the
    coherence directory term and the per-segment software-RPC cost).
    Queueing, network, and storage time are deliberately excluded: the
    result is the *demand* an M/G/k saturation estimate needs, not a
    latency prediction.
    """
    core = CoreModel(config.core)
    coherence = CoherenceModel(CoherenceConfig(
        domain_cores=config.coherence_domain_cores,
        total_cores=config.n_cores))
    mem_cycles = (config.memory_latency_cycles
                  + coherence.directory_roundtrip_cycles())

    def demand(name: str) -> float:
        spec = app.services[name]
        per_segment = core.segment_time_ns(
            spec.segment_instructions, spec.profile,
            config.l2_latency_cycles, mem_cycles) + config.sw_rpc_core_ns
        total = per_segment * spec.n_segments
        for call in spec.calls:
            if not call.is_storage:
                total += demand(call.target)
        return total

    return demand(app.root)


def saturation_estimate_rps(config, app, util_target: float = 0.85) -> float:
    """Analytic peak-throughput estimate used to seed fig18's search.

    The machine saturates when aggregate core demand reaches
    ``util_target`` of total core capacity; beyond that, p99 under any
    QoS threshold is lost to queueing growth.
    """
    demand = service_demand_ns(config, app)
    return util_target * config.n_cores / (demand * 1e-9)
