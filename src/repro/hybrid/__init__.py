"""repro.hybrid — analytic steady-state fast path with guard-and-abort.

Once a service reaches steady state (detected over windowed telemetry),
its per-event simulation is swapped for a calibrated empirical/M-G-k
model that answers completion events analytically; cheap guards abort
back to detailed simulation on drift, faults, or scaling actions.
"""

from repro.hybrid.config import HybridConfig
from repro.hybrid.controller import HybridController
from repro.hybrid.detector import SteadyStateDetector
from repro.hybrid.model import (
    EmpiricalDist,
    MGkModel,
    saturation_estimate_rps,
    service_demand_ns,
)

__all__ = [
    "HybridConfig",
    "HybridController",
    "SteadyStateDetector",
    "EmpiricalDist",
    "MGkModel",
    "saturation_estimate_rps",
    "service_demand_ns",
]
