"""Whole-processor area/power budgets and iso-power/iso-area sizing.

``system_budget`` totals cores, caches and uncore (network hubs, memory
pools, request queues, NICs) for a :class:`~repro.systems.configs.
SystemConfig`.  ``iso_power_cores`` / ``iso_area_cores`` size a
ServerClass-style processor to match a reference budget — the procedure
behind the paper's 40-core (iso-power) and 128-core (iso-area)
ServerClass configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.cacti import sram_area_mm2, sram_leakage_w
from repro.power.mcpat import core_area_mm2, core_power_w
from repro.systems.configs import SystemConfig

KB = 1024
MB = 1024 * 1024

# Uncore component estimates at 10 nm.
_NH_AREA_MM2 = 0.55            # one network-hub switch
_NH_POWER_W = 0.18
_POOL_MB = 4.0                 # memory-pool chiplet (dense eDRAM-like array)
_POOL_DENSITY_FACTOR = 0.25    # vs 6T SRAM
_RQ_BYTES = 16 * KB            # request queue + request context memory
_TOP_NIC_AREA_MM2 = 2.0
_TOP_NIC_POWER_W = 1.5


@dataclass(frozen=True)
class SystemBudget:
    """Processor-wide area/power totals."""

    name: str
    core_area_mm2: float
    cache_area_mm2: float
    uncore_area_mm2: float
    core_power_w: float
    cache_power_w: float
    uncore_power_w: float

    @property
    def area_mm2(self) -> float:
        return self.core_area_mm2 + self.cache_area_mm2 + self.uncore_area_mm2

    @property
    def power_w(self) -> float:
        return self.core_power_w + self.cache_power_w + self.uncore_power_w


def _cache_bytes_per_core(config: SystemConfig) -> float:
    """L1I + L1D + this core's share of L2 (and L3 for ServerClass)."""
    if config.core.name == "serverclass":
        return 2 * 64 * KB + 2 * MB + 2 * MB   # private L2 + L3 slice
    return 2 * 64 * KB + 256 * KB / config.cores_per_village


def _switch_count(config: SystemConfig) -> int:
    if config.topology == "leafspine":
        return 56 * config.n_clusters // 32 if config.n_clusters >= 32 else \
            int(56 * config.n_clusters / 32) or 8
    if config.topology == "fattree":
        return 2 * config.n_clusters - 1
    return config.n_clusters       # mesh: one router per tile


def system_budget(config: SystemConfig, tech_nm: int = 10,
                  activity: float = 0.6) -> SystemBudget:
    """Area/power totals for one processor package."""
    n = config.n_cores
    core_area = n * core_area_mm2(config.core, tech_nm)
    core_power = n * core_power_w(config.core, tech_nm, activity)
    cache_bytes = n * _cache_bytes_per_core(config)
    cache_area = sram_area_mm2(cache_bytes, tech_nm)
    cache_power = sram_leakage_w(cache_bytes, tech_nm) * 2.2  # + dynamic
    switches = _switch_count(config)
    uncore_area = switches * _NH_AREA_MM2 + _TOP_NIC_AREA_MM2
    uncore_power = switches * _NH_POWER_W + _TOP_NIC_POWER_W
    if config.hw_queues:
        # Villages add RQ hardware; clusters add memory-pool chiplets.
        uncore_area += config.n_queues * sram_area_mm2(_RQ_BYTES, tech_nm)
        uncore_area += config.n_clusters * sram_area_mm2(
            _POOL_MB * MB, tech_nm) * _POOL_DENSITY_FACTOR
        uncore_power += config.n_clusters * sram_leakage_w(
            _POOL_MB * MB, tech_nm)
    return SystemBudget(
        name=config.name,
        core_area_mm2=core_area,
        cache_area_mm2=cache_area,
        uncore_area_mm2=uncore_area,
        core_power_w=core_power,
        cache_power_w=cache_power,
        uncore_power_w=uncore_power,
    )


def per_core_power_w(config: SystemConfig, tech_nm: int = 10,
                     activity: float = 0.6) -> float:
    """One core plus its share of the cache hierarchy (Section 5 metric)."""
    budget = system_budget(config, tech_nm, activity)
    return (budget.core_power_w + budget.cache_power_w) / config.n_cores


def iso_power_cores(reference: SystemConfig, candidate: SystemConfig,
                    tech_nm: int = 10, step: int = 4) -> int:
    """Largest candidate core count whose power fits the reference budget."""
    target = system_budget(reference, tech_nm).power_w
    return _size(candidate, lambda b: b.power_w, target, tech_nm, step)


def iso_area_cores(reference: SystemConfig, candidate: SystemConfig,
                   tech_nm: int = 10, step: int = 4) -> int:
    """Largest candidate core count whose area fits the reference budget."""
    target = system_budget(reference, tech_nm).area_mm2
    return _size(candidate, lambda b: b.area_mm2, target, tech_nm, step)


def _size(candidate: SystemConfig, metric, target: float, tech_nm: int,
          step: int) -> int:
    import dataclasses

    n = step
    while True:
        cfg = dataclasses.replace(
            candidate, n_cores=n, cores_per_village=n, cores_per_queue=n,
            n_clusters=n, coherence_domain_cores=n)
        if metric(system_budget(cfg, tech_nm)) > target:
            return max(step, n - step)
        n += step
        if n > 4096:
            raise RuntimeError("iso sizing did not converge")
