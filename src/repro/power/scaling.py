"""CMOS technology scaling (the Stillmaker & Baas [76] stand-in).

The paper evaluates structures at the tools' native 32 nm and scales to
10 nm.  We tabulate area and power scale factors per node relative to
32 nm, following the usual ~0.5x area per full node and the slower
post-Dennard power scaling.
"""

from __future__ import annotations

# Relative to 32 nm.  Area shrinks ~quadratically with feature size until
# fins/wires stop scaling; power (at constant work) improves more slowly.
_AREA_SCALE = {45: 2.0, 32: 1.0, 22: 0.52, 16: 0.30, 14: 0.25, 10: 0.145,
               7: 0.095}
_POWER_SCALE = {45: 1.45, 32: 1.0, 22: 0.70, 16: 0.52, 14: 0.46, 10: 0.36,
                7: 0.30}


def _lookup(table: dict, nm: int) -> float:
    if nm not in table:
        raise ValueError(f"unsupported technology node {nm} nm "
                         f"(known: {sorted(table)})")
    return table[nm]


def scale_area(value_mm2: float, from_nm: int, to_nm: int) -> float:
    """Scale an area from one node to another."""
    return value_mm2 * _lookup(_AREA_SCALE, to_nm) / _lookup(_AREA_SCALE, from_nm)


def scale_power(value_w: float, from_nm: int, to_nm: int) -> float:
    """Scale a power figure from one node to another."""
    return value_w * _lookup(_POWER_SCALE, to_nm) / _lookup(_POWER_SCALE, from_nm)
