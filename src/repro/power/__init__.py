"""Analytic power/area models (the CACTI + McPAT stand-in).

The paper computes area and power with CACTI [5] and McPAT [46] at 32 nm,
scaled to 10 nm [76].  We implement analytic models of the same shape —
SRAM area/energy from geometry, core area/power from microarchitectural
aggressiveness — with coefficients calibrated to the paper's reported
endpoints: 10.225 W per ServerClass core, 0.396 W per ScaleOut core,
0.408 W per uManycore core (core + its share of the cache hierarchy);
547.2 mm2 for uManycore vs 176.1 mm2 for the 40-core ServerClass; and
uManycore 2.9 % larger than ScaleOut.
"""

from repro.power.budget import SystemBudget, iso_area_cores, iso_power_cores, \
    system_budget
from repro.power.cacti import sram_area_mm2, sram_leakage_w, sram_read_energy_pj
from repro.power.mcpat import core_area_mm2, core_power_w
from repro.power.scaling import scale_area, scale_power

__all__ = [
    "sram_area_mm2",
    "sram_read_energy_pj",
    "sram_leakage_w",
    "core_area_mm2",
    "core_power_w",
    "scale_area",
    "scale_power",
    "system_budget",
    "SystemBudget",
    "iso_power_cores",
    "iso_area_cores",
]
