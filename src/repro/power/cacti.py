"""SRAM area/energy model (the CACTI stand-in).

Areas and energies are computed at 32 nm (CACTI's native node in the
paper's flow) and scaled with :mod:`repro.power.scaling`.
"""

from __future__ import annotations

from repro.power.scaling import scale_area, scale_power

MB = 1024 * 1024

# 32 nm SRAM characteristics (6T cell + array overheads).
_MM2_PER_MB_32 = 2.1
_LEAK_W_PER_MB_32 = 0.25
_READ_PJ_PER_ACCESS_64B_32 = 18.0


def sram_area_mm2(size_bytes: float, tech_nm: int = 32,
                  overhead: float = 1.25) -> float:
    """Array area including peripheral overhead (decoders, sense amps)."""
    if size_bytes < 0:
        raise ValueError("size must be non-negative")
    base = size_bytes / MB * _MM2_PER_MB_32 * overhead
    return scale_area(base, 32, tech_nm)


def sram_leakage_w(size_bytes: float, tech_nm: int = 32) -> float:
    """Static leakage of the array."""
    base = size_bytes / MB * _LEAK_W_PER_MB_32
    return scale_power(base, 32, tech_nm)


def sram_read_energy_pj(size_bytes: float, assoc: int = 8,
                        tech_nm: int = 32) -> float:
    """Energy of one 64 B read; grows with capacity (longer wires) and
    associativity (parallel way reads)."""
    if assoc < 1:
        raise ValueError("assoc must be >= 1")
    size_factor = (size_bytes / (64 * 1024)) ** 0.35
    base = _READ_PJ_PER_ACCESS_64B_32 * size_factor * (1 + 0.06 * (assoc - 1))
    return scale_power(base, 32, tech_nm)


def sram_dynamic_power_w(size_bytes: float, accesses_per_s: float,
                         assoc: int = 8, tech_nm: int = 32) -> float:
    """Dynamic power at a given access rate."""
    return sram_read_energy_pj(size_bytes, assoc, tech_nm) * 1e-12 \
        * accesses_per_s
