"""Core area/power model (the McPAT stand-in).

Area grows with issue width and instruction-window size (rename, wakeup
and bypass networks scale superlinearly); power is dynamic (area x
frequency x voltage^2 x activity) plus leakage (proportional to area).
Coefficients are calibrated at 10 nm against the paper's endpoints (see
package docstring); all functions accept other nodes via the scaling
tables.
"""

from __future__ import annotations

from repro.cpu.core_model import CoreConfig
from repro.power.scaling import scale_area, scale_power

# Calibrated at 10 nm.
_AREA_COEF = 0.0033           # mm2 per (issue^1.2 * rob^0.7 * sqrt(GHz))
_DYN_COEF = 0.20              # W per (mm2 * GHz^3 * Vdd^2) at activity 1.0
_LEAK_W_PER_MM2 = 0.22


def _supply_voltage(freq_ghz: float) -> float:
    """Higher clocks need higher Vdd; ~0.65 V at 1 GHz to ~0.95 V at 3 GHz."""
    return 0.55 + 0.13 * freq_ghz


def core_area_mm2(core: CoreConfig, tech_nm: int = 10) -> float:
    """Area of one core (logic only, caches modelled separately)."""
    base = (_AREA_COEF * core.issue_width ** 1.2 * core.rob_entries ** 0.7
            * core.freq_ghz ** 0.5)
    return scale_area(base, 10, tech_nm)


def core_power_w(core: CoreConfig, tech_nm: int = 10,
                 activity: float = 0.6) -> float:
    """Dynamic + leakage power of one core at the given activity factor."""
    if not 0 <= activity <= 1:
        raise ValueError("activity must be in [0, 1]")
    area = core_area_mm2(core, 10)
    vdd = _supply_voltage(core.freq_ghz)
    # The effective cubic clock exponent captures the deeper pipelines,
    # wider bypass networks and more aggressive timing of high-frequency
    # designs on top of the explicit Vdd^2 term.
    dynamic = _DYN_COEF * area * core.freq_ghz ** 3.0 * vdd ** 2 * activity
    leakage = _LEAK_W_PER_MM2 * area * (vdd / 0.8) ** 2
    return scale_power(dynamic + leakage, 10, tech_nm)
